package train

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/obs"
)

// WorkerSpec places one GPU worker in the cluster.
type WorkerSpec struct {
	GPU model.GPU
}

// Homogeneous returns n workers of the same GPU type.
func Homogeneous(g model.GPU, n int) []WorkerSpec {
	specs := make([]WorkerSpec, n)
	for i := range specs {
		specs[i] = WorkerSpec{GPU: g}
	}
	return specs
}

// Mixed returns the paper's (x, y, z) cluster notation: x K80s,
// y P100s, z V100s (Table III).
func Mixed(k80, p100, v100 int) []WorkerSpec {
	specs := make([]WorkerSpec, 0, k80+p100+v100)
	specs = append(specs, Homogeneous(model.K80, k80)...)
	specs = append(specs, Homogeneous(model.P100, p100)...)
	specs = append(specs, Homogeneous(model.V100, v100)...)
	return specs
}

// BatchPolicy opts a session into synchronous training with a fixed
// global minibatch split across the live workers. The global batch is
// the invariant — it is a hyperparameter, so membership changes
// rebalance the per-worker shares instead of shrinking the effective
// batch — and each global step completes when the slowest worker has
// pushed its share (the straggler effect heterogeneous clusters pay).
// Dynamic sizing splits shares proportional to worker speed (Tyagi &
// Sharma's heterogeneity-taming batching); a static split gives every
// worker an equal share regardless of GPU.
type BatchPolicy struct {
	// GlobalBatch is the total samples per global step (required).
	GlobalBatch int
	// MinShare/MaxShare clamp any one worker's share (0: defaults
	// ReferenceBatch/4 and ReferenceBatch×4). When the live worker
	// count makes the clamps and the exact global batch incompatible,
	// the global batch wins.
	MinShare, MaxShare int
	// Dynamic splits shares proportional to per-GPU speed; false
	// splits them equally (the straggler-exposed baseline).
	Dynamic bool
}

// minShare and maxShare apply the documented defaults.
func (p *BatchPolicy) minShare() int {
	if p.MinShare == 0 {
		return model.ReferenceBatch / 4
	}
	return p.MinShare
}

func (p *BatchPolicy) maxShare() int {
	if p.MaxShare == 0 {
		return model.ReferenceBatch * 4
	}
	return p.MaxShare
}

func (p *BatchPolicy) validate() error {
	if p.GlobalBatch <= 0 {
		return fmt.Errorf("train: batch policy needs a positive global batch")
	}
	if p.MinShare < 0 || p.MaxShare < 0 {
		return fmt.Errorf("train: negative batch share clamp")
	}
	if p.minShare() > p.maxShare() {
		return fmt.Errorf("train: batch min share %d above max %d", p.minShare(), p.maxShare())
	}
	return nil
}

// Config describes one training session.
type Config struct {
	// Model is the CNN being trained.
	Model model.Model
	// Workers is the initial worker placement; Workers[0] is the
	// chief. It may be empty for cloud-managed sessions whose workers
	// join via AddWorker as their instances come up; the first joiner
	// becomes chief.
	Workers []WorkerSpec
	// ParameterServers is the number of parameter-server shards
	// (default 1, the paper's baseline).
	ParameterServers int
	// TargetSteps ends the session once the global step count reaches
	// it; 0 means run until the caller stops the kernel.
	TargetSteps int64
	// CheckpointInterval is Ic in steps; 0 disables checkpointing.
	CheckpointInterval int64
	// SpeedWindowSteps is the profiler averaging window (default 100,
	// the paper's methodology).
	SpeedWindowSteps int64
	// DisableWarmup skips the warm-up transient; microbenchmarks that
	// start measurement after warm-up use this to save simulated time.
	DisableWarmup bool
	// Batch, when set, runs the session synchronously under a fixed
	// global minibatch with per-worker shares rebalanced on every
	// membership change. Nil keeps the asynchronous parameter-server
	// loop byte-for-byte.
	Batch *BatchPolicy
	// Seed drives all randomness in the session.
	Seed int64
	// Trace, when non-nil, receives the session's sim-plane event
	// timeline (checkpoints, revocations, joins, rebalances, windowed
	// speed samples). Recording draws no randomness and schedules no
	// events, so a traced session's results are byte-identical to an
	// untraced one's.
	Trace *obs.Recorder
}

// validate normalizes defaults and rejects impossible configurations.
func (c *Config) validate() error {
	if c.Model.Name == "" {
		return fmt.Errorf("train: config has no model")
	}
	for i, w := range c.Workers {
		if !w.GPU.Valid() {
			return fmt.Errorf("train: worker %d has invalid GPU %d", i, int(w.GPU))
		}
	}
	if c.ParameterServers == 0 {
		c.ParameterServers = 1
	}
	if c.ParameterServers < 0 {
		return fmt.Errorf("train: negative parameter server count %d", c.ParameterServers)
	}
	if c.TargetSteps < 0 || c.CheckpointInterval < 0 {
		return fmt.Errorf("train: negative step counts")
	}
	if c.SpeedWindowSteps == 0 {
		c.SpeedWindowSteps = 100
	}
	if c.SpeedWindowSteps < 0 {
		return fmt.Errorf("train: negative speed window")
	}
	if c.Batch != nil {
		if err := c.Batch.validate(); err != nil {
			return err
		}
	}
	return nil
}
