package train

import (
	"fmt"

	"repro/internal/model"
)

// WorkerSpec places one GPU worker in the cluster.
type WorkerSpec struct {
	GPU model.GPU
}

// Homogeneous returns n workers of the same GPU type.
func Homogeneous(g model.GPU, n int) []WorkerSpec {
	specs := make([]WorkerSpec, n)
	for i := range specs {
		specs[i] = WorkerSpec{GPU: g}
	}
	return specs
}

// Mixed returns the paper's (x, y, z) cluster notation: x K80s,
// y P100s, z V100s (Table III).
func Mixed(k80, p100, v100 int) []WorkerSpec {
	specs := make([]WorkerSpec, 0, k80+p100+v100)
	specs = append(specs, Homogeneous(model.K80, k80)...)
	specs = append(specs, Homogeneous(model.P100, p100)...)
	specs = append(specs, Homogeneous(model.V100, v100)...)
	return specs
}

// Config describes one training session.
type Config struct {
	// Model is the CNN being trained.
	Model model.Model
	// Workers is the initial worker placement; Workers[0] is the
	// chief. It may be empty for cloud-managed sessions whose workers
	// join via AddWorker as their instances come up; the first joiner
	// becomes chief.
	Workers []WorkerSpec
	// ParameterServers is the number of parameter-server shards
	// (default 1, the paper's baseline).
	ParameterServers int
	// TargetSteps ends the session once the global step count reaches
	// it; 0 means run until the caller stops the kernel.
	TargetSteps int64
	// CheckpointInterval is Ic in steps; 0 disables checkpointing.
	CheckpointInterval int64
	// SpeedWindowSteps is the profiler averaging window (default 100,
	// the paper's methodology).
	SpeedWindowSteps int64
	// DisableWarmup skips the warm-up transient; microbenchmarks that
	// start measurement after warm-up use this to save simulated time.
	DisableWarmup bool
	// Seed drives all randomness in the session.
	Seed int64
}

// validate normalizes defaults and rejects impossible configurations.
func (c *Config) validate() error {
	if c.Model.Name == "" {
		return fmt.Errorf("train: config has no model")
	}
	for i, w := range c.Workers {
		if !w.GPU.Valid() {
			return fmt.Errorf("train: worker %d has invalid GPU %d", i, int(w.GPU))
		}
	}
	if c.ParameterServers == 0 {
		c.ParameterServers = 1
	}
	if c.ParameterServers < 0 {
		return fmt.Errorf("train: negative parameter server count %d", c.ParameterServers)
	}
	if c.TargetSteps < 0 || c.CheckpointInterval < 0 {
		return fmt.Errorf("train: negative step counts")
	}
	if c.SpeedWindowSteps == 0 {
		c.SpeedWindowSteps = 100
	}
	if c.SpeedWindowSteps < 0 {
		return fmt.Errorf("train: negative speed window")
	}
	return nil
}
