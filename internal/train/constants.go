// Package train simulates asynchronous parameter-server distributed
// training as a discrete-event system: workers alternate GPU compute
// with parameter-server round trips, parameter-server shards are FIFO
// queueing stations, the chief worker checkpoints sequentially with
// its own training, and workers can be revoked, replaced, and rolled
// back mid-session.
//
// The queueing structure is what reproduces the paper's cluster-scale
// results from first principles: per-worker speed independence until
// parameter-server saturation (Table III), cluster-speed plateaus
// (Fig. 4), and the two-parameter-server mitigation (Fig. 12).
package train

import "repro/internal/model"

// Parameter-server calibration. A worker's step issues one update per
// shard; shard service time is a fixed per-update cost plus the
// shard's share of the gradient bytes over the server's effective
// bandwidth. Fitted so saturation matches Table III's shape against
// the Table I baselines: a single parameter server sustains ≈60
// ResNet-32 updates/s — eight K80 workers (demand ≈36/s) see no
// slowdown, eight P100 workers (demand ≈98/s) saturate it, and V100
// workers reach the onset around four workers.
const (
	// psFixedSeconds is the per-update bookkeeping cost at a shard.
	psFixedSeconds = 0.0005
	// psBytesPerSecond is a parameter server's effective
	// aggregation/update bandwidth.
	psBytesPerSecond = 1.2e9
	// psServiceCoV is the service-time noise; near-deterministic
	// service keeps the pre-saturation queueing mild, matching
	// Table III's small step-time inflation at four P100 workers.
	psServiceCoV = 0.05
)

// shardServiceSeconds returns the mean service time of one update at
// one shard when the model's gradients are sharded across shards
// parameter servers.
func shardServiceSeconds(m model.Model, shards int) float64 {
	return psFixedSeconds + float64(m.GradientBytes)/float64(shards)/psBytesPerSecond
}

// baselineRoundTripSeconds is the parameter-server time embedded in
// the paper's single-worker, single-parameter-server Table I
// measurements; the pure GPU compute time is the Table I step time
// minus this.
func baselineRoundTripSeconds(m model.Model) float64 {
	return shardServiceSeconds(m, 1)
}

// Checkpoint calibration (§IV, Fig. 5): writing a checkpoint of Sc
// bytes to same-region cloud storage takes a fixed API/flush cost plus
// Sc over the *effective* storage throughput. Small objects do not
// reach peak throughput (connection setup and chunking amortize over
// size), so the effective rate ramps from ≈72% to 100% of peak as
// objects grow — the mild nonlinearity that makes the paper's
// RBF-kernel SVR the best checkpoint-time model (Table IV). Fitted so
// ResNet-32 takes ≈3.84 s (§IV-B) and the largest zoo model ≈8 s at
// Fig. 5's ≈200 MB maximum.
const (
	ckptBaseSeconds    = 0.22
	ckptBytesPerSecond = 28.8e6
	// ckptRampFloor and ckptRampHalf shape the throughput ramp:
	// eff = peak × (floor + (1−floor)·Sc/(Sc+half)).
	ckptRampFloor     = 0.55
	ckptRampHalfBytes = 60e6
	ckptTimeCoV       = 0.04 // Fig. 5 reports CoV 0.018–0.073
)

// CheckpointSeconds returns the mean time to checkpoint the model.
func CheckpointSeconds(m model.Model) float64 {
	sc := float64(m.CheckpointBytes())
	eff := ckptBytesPerSecond * (ckptRampFloor + (1-ckptRampFloor)*sc/(sc+ckptRampHalfBytes))
	return ckptBaseSeconds + sc/eff
}

// Worker-replacement calibration (Fig. 10): after a replacement server
// is up, the worker must start the framework, join the training
// session, rebuild the computation graph (grows with model size), and
// — for cold starts on a fresh server — download the training data
// shard. Fitted to Fig. 10: ResNet-15 ≈14.8 s warm / ≈75.6 s cold;
// Shake-Shake Big ≈15 s more than ResNet-15, mostly graph setup.
const (
	frameworkStartSeconds  = 5.0
	joinSessionSeconds     = 2.0
	graphSetupBaseSeconds  = 7.5
	graphSetupPerGFLOP     = 0.71
	datasetDownloadSeconds = 60.8
	replacementOverheadCoV = 0.05
	sessionRestartSeconds  = 10.0 // §VI-B: restarting to add a parameter server
)

// GraphSetupSeconds returns the model-dependent computation-graph
// construction time.
func GraphSetupSeconds(m model.Model) float64 {
	return graphSetupBaseSeconds + graphSetupPerGFLOP*m.GFLOPs
}

// ReplacementSeconds returns the mean worker-replacement overhead
// (the paper's Ts). Cold starts add the dataset download.
func ReplacementSeconds(m model.Model, cold bool) float64 {
	t := frameworkStartSeconds + joinSessionSeconds + GraphSetupSeconds(m)
	if cold {
		t += datasetDownloadSeconds
	}
	return t
}

// SessionRestartSeconds is the overhead of tearing down and restarting
// a training session (needed to change the parameter-server count;
// §VI-B reports about 10 seconds).
func SessionRestartSeconds() float64 { return sessionRestartSeconds }
