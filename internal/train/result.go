package train

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/stats"
)

// WorkerStat summarizes one worker's steady-state behavior, the
// quantity Table III reports.
type WorkerStat struct {
	Name         string
	GPU          model.GPU
	Steps        int64
	MeanStepTime float64 // seconds, post-warm-up
	StdStepTime  float64
}

// Result is an immutable snapshot of a finished (or stopped) session.
type Result struct {
	// Done reports whether TargetSteps was reached.
	Done bool
	// TotalSeconds is the time from Start to reaching TargetSteps
	// (only meaningful when Done).
	TotalSeconds float64
	// GlobalSteps is the final global step counter.
	GlobalSteps int64
	// SteadySpeed is the mean windowed cluster speed after warm-up,
	// in steps/second.
	SteadySpeed float64
	// SpeedCoV is the coefficient of variation of the windowed speed.
	SpeedCoV float64
	// SpeedSeries is the per-window speed trace (Fig. 2).
	SpeedSeries []profile.SpeedSample
	// Workers holds per-worker steady-state step times for workers
	// with post-warm-up data.
	Workers []WorkerStat
	// CheckpointCount and CheckpointSeconds total the fault-tolerance
	// overhead actually paid.
	CheckpointCount   int
	CheckpointSeconds float64
	// Events is the session timeline.
	Events []Event
}

// Result snapshots the cluster's current state.
func (c *Cluster) Result() Result {
	return c.ResultScratch(nil)
}

// ResultScratch is Result with its summarization temporaries borrowed
// from the arena instead of allocated — the form campaign units use so
// replications recycle their series buffers. The returned Result is
// fully owned by the caller (nothing in it aliases the arena); a nil
// arena falls back to allocating. Results are bit-identical either
// way.
func (c *Cluster) ResultScratch(s *stats.Scratch) Result {
	series := c.tracker.SpeedSeries()
	var buf []float64
	if s != nil {
		buf = s.Floats(len(series))[:0]
	} else {
		buf = make([]float64, 0, len(series))
	}
	steady, cov := steadyOf(series, float64(c.startedAt)+c.warmupHorizonSeconds(), buf)
	r := Result{
		Done:              c.done,
		GlobalSteps:       c.globalStep,
		SteadySpeed:       steady,
		SpeedCoV:          cov,
		SpeedSeries:       series,
		CheckpointCount:   c.ckptCount,
		CheckpointSeconds: c.ckptSeconds,
		Events:            c.Events(),
	}
	if c.done {
		r.TotalSeconds = float64(c.doneAt - c.startedAt)
	}
	for _, name := range c.order {
		w := c.workers[name]
		mean, std, ok := c.tracker.WorkerStepTime(name)
		if !ok {
			continue
		}
		r.Workers = append(r.Workers, WorkerStat{
			Name:         name,
			GPU:          w.gpu,
			Steps:        w.stepsDone,
			MeanStepTime: mean,
			StdStepTime:  std,
		})
	}
	return r
}

// warmupHorizonSeconds returns how long the cluster-wide warm-up
// transient lasts: until the slowest initial worker finishes its
// warm-up steps (each at the average warm-up multiplier), plus a
// safety margin.
func (c *Cluster) warmupHorizonSeconds() float64 {
	if c.cfg.DisableWarmup {
		return 0
	}
	var slowest float64
	for _, w := range c.cfg.Workers {
		if t := model.StepTime(w.GPU, c.cfg.Model.GFLOPs); t > slowest {
			slowest = t
		}
	}
	avgMultiplier := (1 + model.WarmupFactor) / 2
	return slowest * model.WarmupSteps * avgMultiplier * 1.15
}

// steadyOf averages the windowed speeds recorded after the warm-up
// horizon, always discarding at least the first window (the paper's
// discard-the-first-100-steps rule). The post-warm-up speeds are
// gathered into buf, whose backing array the caller provides (possibly
// scratch-borrowed); it must be empty with capacity for the series.
func steadyOf(series []profile.SpeedSample, warmupEndTime float64, buf []float64) (mean, cov float64) {
	used := buf
	for i, s := range series {
		if i == 0 || s.Time <= warmupEndTime {
			continue
		}
		used = append(used, s.Speed)
	}
	if len(used) == 0 {
		return 0, 0
	}
	return stats.Mean(used), stats.CoV(used)
}

// WorkerStatByGPU returns the first worker stat for the given GPU
// type, which Table III uses to report "the" K80/P100/V100 worker in a
// mixed cluster.
func (r Result) WorkerStatByGPU(g model.GPU) (WorkerStat, error) {
	for _, ws := range r.Workers {
		if ws.GPU == g {
			return ws, nil
		}
	}
	return WorkerStat{}, fmt.Errorf("train: no worker stat for GPU %v", g)
}

// EventsOf filters the timeline by kind.
func (r Result) EventsOf(kind EventKind) []Event {
	var out []Event
	for _, e := range r.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
