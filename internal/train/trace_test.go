package train

import (
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestWindowedSpeedDropsAfterRevocation is the paper's performance-
// tracker story in miniature: in synchronous mode the global batch is
// fixed, so a mid-run revocation hands the survivors bigger shares and
// the tracker's windowed speed visibly drops — and the same samples
// land in the trace timeline as "speed" events.
func TestWindowedSpeedDropsAfterRevocation(t *testing.T) {
	rec := obs.NewRecorder()
	k := &sim.Kernel{}
	// Slow K80 workers with ample PS shards keep compute (not PS
	// contention) the round bottleneck, so losing a worker must slow
	// the rounds down rather than relieve the parameter servers.
	cfg := Config{
		Model:            model.ResNet32(),
		Workers:          Homogeneous(model.K80, 4),
		ParameterServers: 4,
		TargetSteps:      800,
		DisableWarmup:    true,
		Seed:             71,
		Batch:            &BatchPolicy{GlobalBatch: 4 * model.ReferenceBatch},
		Trace:            rec,
	}
	c := MustCluster(k, cfg)
	var revokedAt float64
	c.WhenStep(400, func() {
		victims := c.LiveWorkers()
		if err := c.KillWorker(victims[len(victims)-1]); err != nil {
			t.Error(err)
		}
		revokedAt = k.Now().Seconds()
	})
	c.Start()
	k.Run()
	res := c.Result()
	if !res.Done {
		t.Fatalf("session did not finish: %d steps", res.GlobalSteps)
	}

	// Windowed speeds strictly before the revocation vs strictly after
	// (skipping the window straddling it).
	var before, after []float64
	for _, s := range res.SpeedSeries {
		switch {
		case s.Time < revokedAt:
			before = append(before, s.Speed)
		case s.Time > revokedAt && s.Step > 500:
			after = append(after, s.Speed)
		}
	}
	if len(before) == 0 || len(after) == 0 {
		t.Fatalf("not enough windows around the revocation: %d before, %d after", len(before), len(after))
	}
	meanOf := func(xs []float64) float64 {
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	mb, ma := meanOf(before), meanOf(after)
	// Losing 1 of 4 workers under a fixed global batch makes each round
	// ~4/3 slower; demand a clear drop, not just noise.
	if ma >= mb*0.9 {
		t.Fatalf("windowed speed did not drop after revocation: %.3f -> %.3f steps/s", mb, ma)
	}

	// The trace timeline holds the same story: speed samples matching
	// the tracker's series, the revocation, and the share rebalances.
	kinds := map[string]int{}
	var speeds []obs.Event
	for _, e := range rec.Events() {
		kinds[e.Kind]++
		if e.Kind == "speed" {
			speeds = append(speeds, e)
		}
	}
	if kinds["revocation"] != 1 {
		t.Fatalf("trace has %d revocation events, want 1", kinds["revocation"])
	}
	if kinds["rebalance"] < 2 { // Start + post-revocation
		t.Fatalf("trace has %d rebalance events, want >= 2", kinds["rebalance"])
	}
	if len(speeds) != len(res.SpeedSeries) {
		t.Fatalf("trace has %d speed events, tracker emitted %d windows", len(speeds), len(res.SpeedSeries))
	}
	for i, e := range speeds {
		s := res.SpeedSeries[i]
		if e.T != s.Time || e.Step != s.Step || e.Value != s.Speed {
			t.Fatalf("speed event %d diverges from tracker sample: %+v vs %+v", i, e, s)
		}
	}
}

// TestTraceNeutral pins the core observability contract at the cluster
// level: a traced run's Result is identical to an untraced run's.
func TestTraceNeutral(t *testing.T) {
	run := func(rec *obs.Recorder) Result {
		cfg := syncConfig(4*model.ReferenceBatch, true, Mixed(2, 1, 1))
		cfg.CheckpointInterval = 100
		cfg.Trace = rec
		k := &sim.Kernel{}
		c := MustCluster(k, cfg)
		c.WhenStep(200, func() {
			if err := c.KillWorker(c.LiveWorkers()[0]); err != nil {
				t.Error(err)
			}
		})
		c.Start()
		k.Run()
		return c.Result()
	}
	plain := run(nil)
	rec := obs.NewRecorder()
	traced := run(rec)
	if rec.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	if plain.TotalSeconds != traced.TotalSeconds ||
		plain.GlobalSteps != traced.GlobalSteps ||
		plain.SteadySpeed != traced.SteadySpeed ||
		plain.CheckpointCount != traced.CheckpointCount ||
		len(plain.Events) != len(traced.Events) {
		t.Fatalf("tracing perturbed the simulation:\nplain  %+v\ntraced %+v", plain, traced)
	}
}
