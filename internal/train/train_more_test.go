package train

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestCheckpointEventsMonotone(t *testing.T) {
	res := runCluster(t, Config{
		Model:              model.ResNet15(),
		Workers:            Homogeneous(model.V100, 2),
		TargetSteps:        8000,
		CheckpointInterval: 1000,
		DisableWarmup:      true,
		Seed:               51,
	})
	ckpts := res.EventsOf(EventCheckpoint)
	if len(ckpts) < 6 {
		t.Fatalf("checkpoints = %d, want ≥6", len(ckpts))
	}
	for i := 1; i < len(ckpts); i++ {
		if ckpts[i].Time <= ckpts[i-1].Time {
			t.Fatal("checkpoint times not strictly increasing")
		}
		// Events record the global step at checkpoint *completion*;
		// the second worker keeps stepping during the write, so gaps
		// hover around the interval rather than sitting exactly on it.
		if gap := ckpts[i].Step - ckpts[i-1].Step; gap < 900 {
			t.Fatalf("checkpoints %d steps apart, want ≈ interval (1000)", gap)
		}
	}
}

func TestShakeShakeBigScalesOnV100(t *testing.T) {
	// The paper's "separate experiment" (§III-D): after switching from
	// P100 to V100, Shake-Shake Big shows a positive speed–cluster-size
	// correlation.
	speed := func(n int) float64 {
		res := runCluster(t, Config{
			Model:         model.ShakeShakeBig(),
			Workers:       Homogeneous(model.V100, n),
			TargetSteps:   int64(250 * n),
			DisableWarmup: true,
			Seed:          int64(53 + n),
		})
		return res.SteadySpeed
	}
	s1, s4 := speed(1), speed(4)
	if s4 < 3*s1 {
		t.Errorf("V100 ShakeShakeBig 1→4 workers: %.2f → %.2f, want near-linear scaling", s1, s4)
	}
}

func TestPSMaxUtilization(t *testing.T) {
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:         model.ResNet32(),
		Workers:       Homogeneous(model.P100, 8),
		TargetSteps:   8000,
		DisableWarmup: true,
		Seed:          57,
	})
	c.Start()
	k.Run()
	if u := c.PSMaxUtilization(); u < 0.9 || u > 1.01 {
		t.Errorf("saturated PS utilization = %.3f, want ≈1", u)
	}

	k2 := &sim.Kernel{}
	c2 := MustCluster(k2, Config{
		Model:         model.ResNet32(),
		Workers:       Homogeneous(model.K80, 1),
		TargetSteps:   2000,
		DisableWarmup: true,
		Seed:          59,
	})
	c2.Start()
	k2.Run()
	if u := c2.PSMaxUtilization(); u > 0.2 {
		t.Errorf("single-K80 PS utilization = %.3f, want small", u)
	}
}

func TestZeroParameterServers(t *testing.T) {
	// Degenerate local-training configuration: supported, no PS time.
	k := &sim.Kernel{}
	c, err := NewCluster(k, Config{
		Model:            model.ResNet15(),
		Workers:          Homogeneous(model.V100, 1),
		ParameterServers: -1, // validated away
		TargetSteps:      10,
		Seed:             61,
	})
	if err == nil {
		t.Fatal("negative PS count should error")
		_ = c
	}
}

func TestWarmupToggle(t *testing.T) {
	run := func(disable bool) float64 {
		res := runCluster(t, Config{
			Model:         model.ResNet15(),
			Workers:       Homogeneous(model.K80, 1),
			TargetSteps:   300,
			DisableWarmup: disable,
			Seed:          63,
		})
		return res.TotalSeconds
	}
	with, without := run(false), run(true)
	if with <= without {
		t.Errorf("warm-up run (%.1f s) should be slower than warm-up-free (%.1f s)", with, without)
	}
	// The warm-up surcharge is roughly (factor+1)/2 over 100 steps.
	extra := with - without
	expected := model.StepTime(model.K80, model.ResNet15().GFLOPs) * 100 * (model.WarmupFactor - 1) / 2
	if math.Abs(extra-expected)/expected > 0.35 {
		t.Errorf("warm-up surcharge %.1f s, expected ≈%.1f", extra, expected)
	}
}

func TestAddWorkerValidation(t *testing.T) {
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:   model.ResNet15(),
		Workers: Homogeneous(model.K80, 1),
		Seed:    67,
	})
	if _, err := c.AddWorker(WorkerSpec{GPU: model.K80}, JoinMode{}); err == nil {
		t.Fatal("AddWorker before Start should error")
	}
	c.Start()
	if _, err := c.AddWorker(WorkerSpec{GPU: model.GPU(99)}, JoinMode{}); err == nil {
		t.Fatal("AddWorker with invalid GPU should error")
	}
}

func TestEventKindStrings(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EventCheckpoint:   "checkpoint",
		EventRevocation:   "revocation",
		EventJoin:         "join",
		EventRollback:     "rollback",
		EventChiefHandoff: "chief-handoff",
	} {
		if kind.String() != want {
			t.Errorf("EventKind %d = %q, want %q", int(kind), kind.String(), want)
		}
	}
}

// Property: for any homogeneous cluster below saturation, steady
// cluster speed grows monotonically (within noise) with worker count.
func TestQuickSpeedMonotoneInWorkers(t *testing.T) {
	f := func(seedRaw int64) bool {
		seed := seedRaw % 1000
		prev := 0.0
		for _, n := range []int{1, 2, 4} {
			res := runCluster(t, Config{
				Model:         model.ResNet32(),
				Workers:       Homogeneous(model.K80, n), // K80 never saturates ≤ 8
				TargetSteps:   int64(600 * n),
				DisableWarmup: true,
				Seed:          seed,
			})
			if res.SteadySpeed < prev*0.98 {
				return false
			}
			prev = res.SteadySpeed
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// Property: total session time always covers steps/speed — the
// simulator cannot finish faster than its own steady throughput.
func TestQuickTotalTimeLowerBound(t *testing.T) {
	f := func(seedRaw int64) bool {
		seed := seedRaw % 997
		res := runCluster(t, Config{
			Model:         model.ResNet15(),
			Workers:       Homogeneous(model.P100, 2),
			TargetSteps:   2000,
			DisableWarmup: true,
			Seed:          seed,
		})
		if !res.Done {
			return false
		}
		minTime := float64(res.GlobalSteps) / (res.SteadySpeed * 1.05)
		return res.TotalSeconds >= minTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
