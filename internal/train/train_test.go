package train

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// runCluster builds, starts, and drains a session, returning its
// result.
func runCluster(t *testing.T, cfg Config) Result {
	t.Helper()
	k := &sim.Kernel{}
	c, err := NewCluster(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	k.Run()
	return c.Result()
}

func TestBaselineSpeedMatchesTableI(t *testing.T) {
	// Table I: single worker + single parameter server, steps/second.
	want := map[model.GPU][]float64{
		model.K80:  {9.46, 4.56, 2.58, 0.70},
		model.P100: {21.16, 12.19, 6.99, 1.98},
		model.V100: {27.38, 15.61, 8.80, 2.18},
	}
	models := model.CanonicalModels()
	for g, speeds := range want {
		for i, wantSpeed := range speeds {
			cfg := Config{
				Model:       models[i],
				Workers:     Homogeneous(g, 1),
				TargetSteps: 1200,
				Seed:        int64(7*i) + int64(g),
			}
			res := runCluster(t, cfg)
			if !res.Done {
				t.Fatalf("%v %s did not finish", g, models[i].Name)
			}
			if math.Abs(res.SteadySpeed-wantSpeed)/wantSpeed > 0.03 {
				t.Errorf("%v %s steady speed = %.2f steps/s, want ≈%.2f",
					g, models[i].Name, res.SteadySpeed, wantSpeed)
			}
		}
	}
}

func TestSpeedStableAfterWarmup(t *testing.T) {
	// Fig. 2: training speed is stable after warm-up with CoV ≤ 0.02,
	// and the warm-up window is visibly slower.
	cfg := Config{
		Model:       model.ResNet15(),
		Workers:     Homogeneous(model.K80, 1),
		TargetSteps: 4000,
		Seed:        1,
	}
	res := runCluster(t, cfg)
	if res.SpeedCoV > 0.03 {
		t.Errorf("steady speed CoV = %.4f, want ≤ 0.03", res.SpeedCoV)
	}
	series := res.SpeedSeries
	if len(series) != 40 {
		t.Fatalf("got %d windows, want 40", len(series))
	}
	if series[0].Speed >= res.SteadySpeed*0.8 {
		t.Errorf("warm-up window speed %.2f not visibly below steady %.2f",
			series[0].Speed, res.SteadySpeed)
	}
}

func TestPerWorkerStepTimeTableIII(t *testing.T) {
	// Table III's shape: per-worker ResNet-32 step time is flat for
	// K80 clusters up to 8 workers, inflates ≈1.6–2× for 8 P100/V100
	// workers (parameter-server saturation), and is mildly inflated
	// at 4 V100 workers (saturation onset).
	resnet32 := model.ResNet32()
	perWorker := func(g model.GPU, n int) float64 {
		cfg := Config{
			Model:         resnet32,
			Workers:       Homogeneous(g, n),
			TargetSteps:   int64(n * 700),
			DisableWarmup: false,
			Seed:          int64(n*10) + int64(g),
		}
		res := runCluster(t, cfg)
		ws, err := res.WorkerStatByGPU(g)
		if err != nil {
			t.Fatal(err)
		}
		return ws.MeanStepTime
	}

	k80Base := perWorker(model.K80, 1)
	if infl := perWorker(model.K80, 8) / k80Base; infl > 1.10 {
		t.Errorf("8-worker K80 step-time inflation = %.3f, want ≈1 (no bottleneck)", infl)
	}
	p100Base := perWorker(model.P100, 1)
	if infl := perWorker(model.P100, 8) / p100Base; infl < 1.4 {
		t.Errorf("8-worker P100 inflation = %.3f, want ≥1.4 (saturated)", infl)
	}
	v100Base := perWorker(model.V100, 1)
	infl4 := perWorker(model.V100, 4) / v100Base
	if infl4 < 1.0 || infl4 > 1.35 {
		t.Errorf("4-worker V100 inflation = %.3f, want mild (1.0–1.35)", infl4)
	}
	if infl := perWorker(model.V100, 8) / v100Base; infl < 1.7 {
		t.Errorf("8-worker V100 inflation = %.3f, want ≥1.7", infl)
	}
}

func TestHeterogeneousClusterDoesNotSlowWorkers(t *testing.T) {
	// Table III's (2,1,1) column: mixing GPU types leaves each
	// worker's step time at its baseline.
	resnet32 := model.ResNet32()
	cfg := Config{
		Model:       resnet32,
		Workers:     Mixed(2, 1, 1),
		TargetSteps: 4000,
		Seed:        42,
	}
	res := runCluster(t, cfg)
	for _, g := range model.AllGPUs() {
		ws, err := res.WorkerStatByGPU(g)
		if err != nil {
			t.Fatal(err)
		}
		baseline := model.StepTimeModel(g, resnet32)
		if math.Abs(ws.MeanStepTime-baseline)/baseline > 0.08 {
			t.Errorf("%v step time in mixed cluster = %.4f, baseline %.4f", g, ws.MeanStepTime, baseline)
		}
	}
}

func TestClusterSpeedIsSumUntilBottleneck(t *testing.T) {
	// §III-D / §VI-A: cluster speed ≈ Σ worker speeds below the
	// parameter-server bottleneck.
	cfg := Config{
		Model:       model.ResNet32(),
		Workers:     Mixed(2, 1, 1),
		TargetSteps: 5000,
		Seed:        3,
	}
	res := runCluster(t, cfg)
	want := 2*4.56 + 12.19 + 15.61
	// Shard contention at ρ≈0.6 shaves a few percent; the paper's own
	// tables vary by about that much between measurement methods
	// (Table I vs. Table III baselines).
	if math.Abs(res.SteadySpeed-want)/want > 0.10 {
		t.Errorf("heterogeneous cluster speed = %.2f, want ≈%.2f (sum of workers)", res.SteadySpeed, want)
	}
	if res.SteadySpeed > want*1.02 {
		t.Errorf("cluster speed %.2f exceeds the sum of worker speeds %.2f", res.SteadySpeed, want)
	}
}

func TestP100ClusterPlateau(t *testing.T) {
	// Fig. 4: ResNet-32 on P100 plateaus past four workers at the
	// single-PS capacity (≈60 updates/s in our calibration).
	speed := func(n int) float64 {
		cfg := Config{
			Model:       model.ResNet32(),
			Workers:     Homogeneous(model.P100, n),
			TargetSteps: int64(3000 * n),
			Seed:        int64(n),
		}
		return runCluster(t, cfg).SteadySpeed
	}
	s2, s4, s8 := speed(2), speed(4), speed(8)
	if math.Abs(s2-2*12.19)/(2*12.19) > 0.05 {
		t.Errorf("2-worker speed %.1f, want ≈%.1f", s2, 2*12.19)
	}
	if s8 > 66 {
		t.Errorf("8-worker speed %.1f exceeds single-PS capacity ≈60", s8)
	}
	if s8 < s4 {
		t.Errorf("speed decreased with more workers: s4=%.1f s8=%.1f", s4, s8)
	}
	if (s8-s4)/s4 > 0.35 {
		t.Errorf("s4→s8 speedup %.2f too large for a plateau", (s8-s4)/s4)
	}
}

func TestSecondParameterServerLiftsPlateau(t *testing.T) {
	// Fig. 12b: adding a second parameter server lifts the 8-worker
	// ResNet-32 plateau by a large fraction (paper: up to 70.6%).
	speed := func(ps int) float64 {
		cfg := Config{
			Model:            model.ResNet32(),
			Workers:          Homogeneous(model.P100, 8),
			ParameterServers: ps,
			TargetSteps:      24000,
			Seed:             5,
		}
		return runCluster(t, cfg).SteadySpeed
	}
	s1, s2 := speed(1), speed(2)
	gain := (s2 - s1) / s1
	if gain < 0.35 {
		t.Errorf("2-PS speedup = %.2f, want ≥0.35 (paper reports up to 0.706)", gain)
	}
}

func TestCheckpointOverheadIsAdditive(t *testing.T) {
	// §IV-B: 100 steps with checkpointing take one checkpoint time
	// longer than without (training and checkpointing are sequential).
	base := Config{
		Model:         model.ResNet32(),
		Workers:       Homogeneous(model.K80, 1),
		TargetSteps:   1000,
		DisableWarmup: true,
		Seed:          9,
	}
	withoutCkpt := runCluster(t, base)

	withCfg := base
	withCfg.CheckpointInterval = 100
	withCkpt := runCluster(t, withCfg)

	if withCkpt.CheckpointCount < 9 {
		t.Fatalf("checkpoint count = %d, want ≥9 for 1000 steps at interval 100", withCkpt.CheckpointCount)
	}
	extra := withCkpt.TotalSeconds - withoutCkpt.TotalSeconds
	wantExtra := withCkpt.CheckpointSeconds
	if math.Abs(extra-wantExtra)/wantExtra > 0.12 {
		t.Errorf("checkpoint overhead: total time grew %.2f s, checkpoints took %.2f s — should match (additivity)",
			extra, wantExtra)
	}
	perCkpt := withCkpt.CheckpointSeconds / float64(withCkpt.CheckpointCount)
	if math.Abs(perCkpt-3.84) > 0.5 {
		t.Errorf("ResNet-32 checkpoint = %.2f s, want ≈3.84 (§IV-B)", perCkpt)
	}
}

func TestCheckpointSecondsCalibration(t *testing.T) {
	if got := CheckpointSeconds(model.ResNet32()); math.Abs(got-3.84) > 0.25 {
		t.Errorf("ResNet-32 checkpoint mean = %.2f s, want ≈3.84", got)
	}
	if got := CheckpointSeconds(model.ShakeShakeBig()); got < 7 || got > 8.6 {
		t.Errorf("ShakeShakeBig checkpoint mean = %.2f s, want ≈8 (Fig. 5 maximum)", got)
	}
}

func TestReplacementOverheadCalibration(t *testing.T) {
	// Fig. 10: ResNet-15 ≈14.8 s warm, ≈75.6 s cold; Shake-Shake Big
	// ≈15 s longer (graph setup).
	r15, ssb := model.ResNet15(), model.ShakeShakeBig()
	if got := ReplacementSeconds(r15, false); math.Abs(got-14.8) > 1 {
		t.Errorf("ResNet-15 warm replacement = %.1f s, want ≈14.8", got)
	}
	if got := ReplacementSeconds(r15, true); math.Abs(got-75.6) > 2 {
		t.Errorf("ResNet-15 cold replacement = %.1f s, want ≈75.6", got)
	}
	delta := ReplacementSeconds(ssb, false) - ReplacementSeconds(r15, false)
	if math.Abs(delta-15) > 3 {
		t.Errorf("ShakeShakeBig−ResNet-15 warm delta = %.1f s, want ≈15", delta)
	}
}

func TestChiefRevocationHandoff(t *testing.T) {
	// CM-DARE: when the chief is revoked, another worker takes over
	// checkpoint duty and checkpoints keep flowing.
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:              model.ResNet15(),
		Workers:            Homogeneous(model.K80, 2),
		TargetSteps:        4000,
		CheckpointInterval: 500,
		DisableWarmup:      true,
		Seed:               11,
	})
	chief := c.Chief()
	c.WhenStep(1200, func() {
		if err := c.KillWorker(chief); err != nil {
			t.Errorf("KillWorker: %v", err)
		}
	})
	c.Start()
	k.Run()
	res := c.Result()
	if !res.Done {
		t.Fatal("session did not finish after chief revocation")
	}
	handoffs := res.EventsOf(EventChiefHandoff)
	if len(handoffs) != 1 {
		t.Fatalf("chief handoffs = %d, want 1", len(handoffs))
	}
	newChief := handoffs[0].Worker
	if newChief == chief {
		t.Fatal("handoff chose the dead chief")
	}
	// At least one checkpoint after the handoff, written by the new
	// chief.
	var postHandoff int
	for _, e := range res.EventsOf(EventCheckpoint) {
		if e.Time > handoffs[0].Time {
			postHandoff++
			if e.Worker != newChief {
				t.Errorf("post-handoff checkpoint written by %s, want %s", e.Worker, newChief)
			}
		}
	}
	if postHandoff == 0 {
		t.Error("no checkpoints after chief handoff")
	}
}

func TestRevocationHalvesTwoWorkerSpeed(t *testing.T) {
	// Killing one of two identical workers should halve throughput.
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:         model.ResNet15(),
		Workers:       Homogeneous(model.K80, 2),
		DisableWarmup: true,
		Seed:          13,
	})
	c.WhenStep(4000, func() {
		if err := c.KillWorker(c.LiveWorkers()[1]); err != nil {
			t.Errorf("KillWorker: %v", err)
		}
	})
	c.Start()
	k.RunUntil(sim.Time(500))
	series := c.Tracker().SpeedSeries()
	revTime := c.Events()[0].Time
	var before, after []float64
	for _, s := range series {
		switch {
		case s.Time < revTime-5:
			before = append(before, s.Speed)
		case s.Time > revTime+5:
			after = append(after, s.Speed)
		}
	}
	if len(before) == 0 || len(after) == 0 {
		t.Fatal("not enough speed samples around the revocation")
	}
	ratio := mean(after) / mean(before)
	if math.Abs(ratio-0.5) > 0.06 {
		t.Errorf("post-revocation speed ratio = %.3f, want ≈0.5", ratio)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestColdReplacementJoinsAfterOverhead(t *testing.T) {
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:         model.ResNet15(),
		Workers:       Homogeneous(model.K80, 2),
		DisableWarmup: true,
		Seed:          17,
	})
	var killedAt, joinRequestedAt float64
	c.WhenStep(2000, func() {
		victim := c.LiveWorkers()[1]
		if err := c.KillWorker(victim); err != nil {
			t.Errorf("KillWorker: %v", err)
		}
		killedAt = k.Now().Seconds()
		joinRequestedAt = killedAt
		if _, err := c.AddWorker(WorkerSpec{GPU: model.K80}, JoinMode{Cold: true}); err != nil {
			t.Errorf("AddWorker: %v", err)
		}
	})
	c.Start()
	k.RunUntil(sim.Time(800))
	joins := c.Result().EventsOf(EventJoin)
	if len(joins) != 1 {
		t.Fatalf("joins = %d, want 1", len(joins))
	}
	overhead := joins[0].Time - joinRequestedAt
	// One lognormal draw at CoV 0.05: allow ±3σ.
	if math.Abs(overhead-75.6) > 12 {
		t.Errorf("cold join overhead = %.1f s, want ≈75.6 (Fig. 10)", overhead)
	}
	if len(c.LiveWorkers()) != 2 {
		t.Fatalf("live workers = %d, want 2", len(c.LiveWorkers()))
	}
}

func TestReuseChiefIPRollsBack(t *testing.T) {
	// §V-E: an unmodified-TensorFlow replacement that reuses the
	// chief's address restarts the session from the last checkpoint.
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:              model.ResNet15(),
		Workers:            Homogeneous(model.K80, 2),
		CheckpointInterval: 1000,
		DisableWarmup:      true,
		Seed:               19,
	})
	c.SetChiefHandoff(false)
	chief := c.Chief()
	c.WhenStep(1600, func() {
		if err := c.KillWorker(chief); err != nil {
			t.Errorf("KillWorker: %v", err)
		}
		if _, err := c.AddWorker(WorkerSpec{GPU: model.K80}, JoinMode{ReuseChiefIP: true}); err != nil {
			t.Errorf("AddWorker: %v", err)
		}
	})
	c.Start()
	k.RunUntil(sim.Time(700))
	res := c.Result()
	rollbacks := res.EventsOf(EventRollback)
	if len(rollbacks) != 1 {
		t.Fatalf("rollbacks = %d, want 1", len(rollbacks))
	}
	if rollbacks[0].Step < 1600 {
		t.Errorf("rollback recorded at step %d, want ≥1600", rollbacks[0].Step)
	}
	ckptStep := c.LastCheckpointStep()
	if ckptStep < 1000 {
		t.Fatalf("no checkpoint before rollback (last = %d)", ckptStep)
	}
	// After the rollback the new chief owns checkpointing.
	if c.Chief() == chief || c.Chief() == "" {
		t.Errorf("chief after IP reuse = %q", c.Chief())
	}
}

func TestWithoutHandoffNoCheckpointsAfterChiefDeath(t *testing.T) {
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:              model.ResNet15(),
		Workers:            Homogeneous(model.K80, 2),
		CheckpointInterval: 500,
		DisableWarmup:      true,
		Seed:               23,
	})
	c.SetChiefHandoff(false)
	chief := c.Chief()
	c.WhenStep(700, func() {
		if err := c.KillWorker(chief); err != nil {
			t.Errorf("KillWorker: %v", err)
		}
	})
	c.Start()
	k.RunUntil(sim.Time(600))
	res := c.Result()
	revTime := res.EventsOf(EventRevocation)[0].Time
	for _, e := range res.EventsOf(EventCheckpoint) {
		if e.Time > revTime {
			t.Fatalf("checkpoint at %.1f s after chief death without handoff", e.Time)
		}
	}
	if c.Chief() != "" {
		t.Fatalf("chief = %q, want none", c.Chief())
	}
}

func TestWhenStepFiresOnce(t *testing.T) {
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:         model.ResNet15(),
		Workers:       Homogeneous(model.V100, 1),
		TargetSteps:   500,
		DisableWarmup: true,
		Seed:          29,
	})
	fired := 0
	c.WhenStep(100, func() { fired++ })
	c.Start()
	k.Run()
	if fired != 1 {
		t.Fatalf("WhenStep fired %d times, want 1", fired)
	}
}

func TestWhenStepInPastPanics(t *testing.T) {
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:       model.ResNet15(),
		Workers:     Homogeneous(model.V100, 1),
		TargetSteps: 10,
		Seed:        31,
	})
	c.Start()
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("WhenStep in the past should panic")
		}
	}()
	c.WhenStep(5, func() {})
}

func TestConfigValidation(t *testing.T) {
	k := &sim.Kernel{}
	cases := []Config{
		{}, // no model
		{Model: model.ResNet15(), Workers: []WorkerSpec{{GPU: model.GPU(99)}}}, // bad GPU
		{Model: model.ResNet15(), Workers: Homogeneous(model.K80, 1), TargetSteps: -1},
		{Model: model.ResNet15(), Workers: Homogeneous(model.K80, 1), ParameterServers: -2},
	}
	for i, cfg := range cases {
		if _, err := NewCluster(k, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Model:              model.ResNet32(),
		Workers:            Mixed(1, 1, 0),
		TargetSteps:        2000,
		CheckpointInterval: 400,
		Seed:               37,
	}
	a := runCluster(t, cfg)
	b := runCluster(t, cfg)
	if a.TotalSeconds != b.TotalSeconds || a.CheckpointSeconds != b.CheckpointSeconds {
		t.Fatalf("same seed produced different runs: %.6f vs %.6f", a.TotalSeconds, b.TotalSeconds)
	}
}

func TestKillWorkerErrors(t *testing.T) {
	k := &sim.Kernel{}
	c := MustCluster(k, Config{
		Model:   model.ResNet15(),
		Workers: Homogeneous(model.K80, 1),
		Seed:    41,
	})
	if err := c.KillWorker("nope"); err == nil {
		t.Fatal("killing unknown worker should error")
	}
	name := c.LiveWorkers()[0]
	if err := c.KillWorker(name); err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(name); err == nil {
		t.Fatal("double kill should error")
	}
}
