package train

import (
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Worker is one GPU worker's state machine: compute a gradient, push
// it through every parameter-server shard, repeat. Asynchrony across
// workers comes from each worker looping at its own pace; coupling
// comes only from the shared shard queues.
//
// Every timer a worker arms reuses one of the handlers bound once at
// construction (pushFn, shardDoneFn, joinFn, ckptDoneFn): the step
// loop schedules millions of callbacks per session, and a fresh
// closure per callback was the kernel hot path's dominant allocation.
// The per-flight state those closures used to capture (shards still
// pending, checkpoint snapshot, join mode) lives in fields instead —
// safe because a worker has at most one step, one join, and one
// checkpoint in flight at a time.
type Worker struct {
	c           *Cluster
	name        string
	gpu         model.GPU
	computeMean float64
	// computeDist freezes the worker's steady-state step-time
	// distribution; syncDist memoizes the share-scaled variant, which
	// only changes when synchronous-mode shares rebalance.
	computeDist stats.LogNormalDist
	syncDist    stats.LogNormalDist
	rng         *stats.Rng
	stepRec     profile.StepRecorder

	dead      bool
	stepsDone int64
	stepStart sim.Time

	// Prebound timer handlers, interned in the kernel's callback table
	// once per worker lifetime and scheduled by id thereafter.
	pushID      sim.FnID // async compute done → pushUpdate
	pushSyncID  sim.FnID // sync compute done → cluster.pushSync
	shardDoneID sim.FnID // one shard served this worker's update
	joinID      sim.FnID // replacement overhead elapsed → join session
	ckptDoneID  sim.FnID // checkpoint write finished

	// shardsRemaining counts the in-flight step's unserved shards.
	shardsRemaining int

	// joinMode parameterizes the pending AddWorker join.
	joinMode JoinMode

	// ckptSnapshot/ckptDur describe the in-flight checkpoint.
	ckptSnapshot int64
	ckptDur      float64
}

// bindHandlers interns the worker's reusable timer handlers.
func (w *Worker) bindHandlers() {
	k := w.c.k
	w.pushID = k.Register(w.pushUpdate)
	w.pushSyncID = k.Register(func() { w.c.pushSync(w) })
	w.shardDoneID = k.Register(w.shardDone)
	w.joinID = k.Register(w.join)
	w.ckptDoneID = k.Register(w.ckptDone)
}

// startStep begins the compute phase of the next step.
func (w *Worker) startStep() {
	if w.dead || w.c.done {
		return
	}
	w.stepStart = w.c.k.Now()
	compute := w.computeDist.Sample(w.rng)
	if !w.c.cfg.DisableWarmup {
		compute *= model.WarmupMultiplier(w.stepsDone)
	}
	w.c.k.PostAfter(compute, w.pushID)
}

// pushUpdate submits the gradient to every shard; the step's
// communication phase ends when the slowest shard responds.
func (w *Worker) pushUpdate() {
	if w.dead || w.c.done {
		return
	}
	w.shardsRemaining = len(w.c.shards)
	if w.shardsRemaining == 0 {
		// Degenerate zero-PS configuration: local training only.
		w.finishStep()
		return
	}
	for _, shard := range w.c.shards {
		service := w.c.serviceDist.Sample(w.rng)
		shard.SubmitID(service, w.shardDoneID)
	}
}

// shardDone records one shard's response; the step's communication
// phase ends when the last shard answers. In synchronous mode the
// completed share lands in the round barrier instead of chaining the
// worker's own next step.
func (w *Worker) shardDone() {
	w.shardsRemaining--
	if w.shardsRemaining != 0 {
		return
	}
	if w.c.syncEnabled() {
		w.c.syncContribution(w)
		return
	}
	w.finishStep()
}

// finishStep accounts a completed step and chains the next action:
// another step, or a checkpoint if this worker is the chief and one is
// due.
func (w *Worker) finishStep() {
	if w.dead {
		return // revoked mid-flight: gradient discarded
	}
	w.stepsDone++
	w.stepRec.Record(float64(w.c.k.Now() - w.stepStart))
	w.c.completeGlobalStep()
	if w.name == w.c.chief && w.c.checkpointDue() {
		w.c.runCheckpoint(w)
		return
	}
	w.startStep()
}

// join enters the running session once the replacement overhead
// elapsed — the deferred half of Cluster.AddWorker.
func (w *Worker) join() {
	c := w.c
	if c.done {
		return
	}
	c.addEvent(EventJoin, w.name)
	if w.joinMode.ReuseChiefIP {
		c.rollback()
		c.chief = w.name
	} else if w.joinMode.MakeChief || c.chief == "" {
		c.chief = w.name
		c.addEvent(EventChiefHandoff, w.name)
	}
	if c.syncEnabled() {
		c.syncJoin()
		return
	}
	w.startStep()
}

// ckptDone commits (or writes off) the in-flight checkpoint described
// by ckptSnapshot/ckptDur.
func (w *Worker) ckptDone() {
	c := w.c
	if c.syncEnabled() {
		// Synchronous mode: the whole cluster stalled at the round
		// barrier while the chief wrote; resume it.
		c.ckptActive = false
		if c.done {
			return
		}
		if !w.dead {
			c.commitCheckpoint(w)
		}
		c.startRound()
		return
	}
	if w.dead {
		// Chief revoked mid-checkpoint: the save is lost. CM-DARE's
		// takeover means the next chief will checkpoint at its next
		// boundary.
		return
	}
	c.commitCheckpoint(w)
	w.startStep()
}
