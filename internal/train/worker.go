package train

import (
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Worker is one GPU worker's state machine: compute a gradient, push
// it through every parameter-server shard, repeat. Asynchrony across
// workers comes from each worker looping at its own pace; coupling
// comes only from the shared shard queues.
type Worker struct {
	c           *Cluster
	name        string
	gpu         model.GPU
	computeMean float64
	rng         *stats.Rng

	dead      bool
	stepsDone int64
	stepStart sim.Time
}

// startStep begins the compute phase of the next step.
func (w *Worker) startStep() {
	if w.dead || w.c.done {
		return
	}
	w.stepStart = w.c.k.Now()
	compute := w.rng.LogNormal(w.computeMean, model.StepTimeCoV)
	if !w.c.cfg.DisableWarmup {
		compute *= model.WarmupMultiplier(w.stepsDone)
	}
	w.c.k.After(compute, w.pushUpdate)
}

// pushUpdate submits the gradient to every shard; the step's
// communication phase ends when the slowest shard responds.
func (w *Worker) pushUpdate() {
	if w.dead || w.c.done {
		return
	}
	remaining := len(w.c.shards)
	if remaining == 0 {
		// Degenerate zero-PS configuration: local training only.
		w.finishStep()
		return
	}
	meanService := shardServiceSeconds(w.c.cfg.Model, len(w.c.shards))
	for _, shard := range w.c.shards {
		service := w.rng.LogNormal(meanService, psServiceCoV)
		shard.Submit(service, func() {
			remaining--
			if remaining == 0 {
				w.finishStep()
			}
		})
	}
}

// finishStep accounts a completed step and chains the next action:
// another step, or a checkpoint if this worker is the chief and one is
// due.
func (w *Worker) finishStep() {
	if w.dead {
		return // revoked mid-flight: gradient discarded
	}
	w.stepsDone++
	w.c.tracker.RecordWorkerStep(w.name, float64(w.c.k.Now()-w.stepStart))
	w.c.completeGlobalStep()
	if w.name == w.c.chief && w.c.checkpointDue() {
		w.c.runCheckpoint(w)
		return
	}
	w.startStep()
}
