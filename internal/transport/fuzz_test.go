package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
)

// frameBytes encodes one message the way writeFrame puts it on the
// wire, for building fuzz seeds.
func frameBytes(t *testing.F, m *message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame throws arbitrary bytes at the wire decoder. The codec
// sits directly on TCP between cluster nodes, so a corrupted or
// malicious stream must never panic or allocate unboundedly; and any
// frame that decodes must survive a write/read round trip unchanged —
// otherwise request/response correlation silently breaks.
func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(f, &message{ID: 1, Kind: "req", Method: "step", Body: json.RawMessage(`{"n":42}`)}))
	f.Add(frameBytes(f, &message{ID: 7, Kind: "resp", Error: "boom"}))
	f.Add(frameBytes(f, &message{Kind: "notify", Method: "heartbeat"}))
	// Truncated payload: length prefix promises more than arrives.
	valid := frameBytes(f, &message{ID: 2, Kind: "req", Method: "join"})
	f.Add(valid[:len(valid)-3])
	// Oversized length prefix: must be rejected before allocation.
	var huge [5]byte
	binary.BigEndian.PutUint32(huge[:], maxFrameBytes+1)
	huge[4] = 'x'
	f.Add(huge[:])
	// Length prefix only, empty payload, garbage JSON.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})
	f.Add(append([]byte{0, 0, 0, 2}, '{', 'x'))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readFrame(bytes.NewReader(data))
		if err != nil {
			// Rejected input is fine; panicking or misreporting is not.
			// Oversized frames must be refused without reading the
			// payload (the error names the limit, not an EOF from a
			// doomed allocation-and-read).
			if len(data) >= 4 {
				if n := binary.BigEndian.Uint32(data[:4]); n > maxFrameBytes &&
					!strings.Contains(err.Error(), "exceeds limit") {
					t.Fatalf("frame of %d bytes rejected for the wrong reason: %v", n, err)
				}
			}
			return
		}
		// Round trip: re-encode and re-read, then compare canonical
		// JSON forms (the decoder drops unknown fields by design, so
		// byte-level input equality is not the contract — message
		// equality is).
		var buf bytes.Buffer
		if err := writeFrame(&buf, m); err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		m2, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		j1, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("round trip changed the message:\n first: %s\nsecond: %s", j1, j2)
		}
	})
}

// FuzzWriteReadFrame fuzzes the structured direction: every encodable
// message must decode back equal.
func FuzzWriteReadFrame(f *testing.F) {
	f.Add(uint64(1), "req", "step", []byte(`{"n":1}`), "")
	f.Add(uint64(0), "notify", "", []byte(nil), "")
	f.Add(uint64(1<<63), "resp", "", []byte(nil), "remote failed")
	f.Fuzz(func(t *testing.T, id uint64, kind, method string, body []byte, errStr string) {
		m := &message{ID: id, Kind: kind, Method: method, Error: errStr}
		if json.Valid(body) {
			m.Body = body
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, m); err != nil {
			return // e.g. invalid UTF-8 in strings is allowed to fail encode
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("wrote a frame that does not read back: %v", err)
		}
		if got.ID != m.ID || got.Kind != m.Kind || got.Method != m.Method || got.Error != m.Error {
			t.Fatalf("round trip changed envelope: wrote %+v, read %+v", m, got)
		}
	})
}
