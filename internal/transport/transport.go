// Package transport implements the small RPC layer the live CM-DARE
// cluster runs on: length-prefixed JSON messages over TCP, with
// request/response correlation and one-way notifications.
//
// The paper's training cluster wires parameter servers, workers, and
// the controller together over RPC (Fig. 1, step 3); this package is
// that substrate, built on the standard library only.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrameBytes bounds a single message (largest gradient shard plus
// envelope overhead). Oversized frames indicate a protocol bug or a
// corrupted stream; fail loudly instead of allocating unboundedly.
const maxFrameBytes = 64 << 20

// message is the wire envelope.
type message struct {
	ID     uint64          `json:"id"`
	Kind   string          `json:"kind"` // "req", "resp", or "notify"
	Method string          `json:"method,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// writeFrame marshals and writes one length-prefixed message.
func writeFrame(w io.Writer, m *message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("transport: marshal: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("transport: write length: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write payload: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed message.
func readFrame(r io.Reader) (*message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: read payload: %w", err)
	}
	var m message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("transport: unmarshal: %w", err)
	}
	return &m, nil
}

// Handler serves one method. The returned value is marshaled as the
// response body; a returned error is sent to the caller as a string.
type Handler func(body json.RawMessage) (any, error)

// Server accepts connections and dispatches requests to registered
// handlers. Notifications dispatch to the same handlers with their
// return value discarded.
type Server struct {
	lis net.Listener

	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{
		lis:      lis,
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Handle registers a handler; it panics on duplicate registration,
// which is always a wiring bug.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("transport: duplicate handler for %q", method))
	}
	s.handlers[method] = h
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		m, err := readFrame(conn)
		if err != nil {
			return
		}
		s.mu.Lock()
		h := s.handlers[m.Method]
		s.mu.Unlock()
		switch m.Kind {
		case "notify":
			if h != nil {
				// Errors on notifications have nowhere to go; the
				// handler owns its own logging.
				_, _ = h(m.Body)
			}
		case "req":
			resp := &message{ID: m.ID, Kind: "resp"}
			if h == nil {
				resp.Error = fmt.Sprintf("no handler for method %q", m.Method)
			} else if out, herr := h(m.Body); herr != nil {
				resp.Error = herr.Error()
			} else if out != nil {
				body, merr := json.Marshal(out)
				if merr != nil {
					resp.Error = fmt.Sprintf("marshal response: %v", merr)
				} else {
					resp.Body = body
				}
			}
			writeMu.Lock()
			err := writeFrame(conn, resp)
			writeMu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// Close stops the listener and all connections, waiting for serving
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

// Client is one TCP connection to a Server, safe for concurrent use.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *message
	closed  bool
	readErr error

	wg sync.WaitGroup
}

// Dial connects to a server address with a connect timeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan *message)}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	for {
		m, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.closed = true
			c.mu.Unlock()
			return
		}
		if m.Kind != "resp" {
			continue // clients only receive responses
		}
		c.mu.Lock()
		ch := c.pending[m.ID]
		delete(c.pending, m.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// ErrClosed reports a call on a closed or failed connection.
var ErrClosed = errors.New("transport: connection closed")

// Call performs a request and unmarshals the response body into out
// (out may be nil to discard). It fails after timeout.
func (c *Client) Call(method string, in, out any, timeout time.Duration) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("transport: marshal request: %w", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req := &message{ID: id, Kind: "req", Method: method, Body: body}
	c.writeMu.Lock()
	err = writeFrame(c.conn, req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}

	select {
	case m, ok := <-ch:
		if !ok {
			return ErrClosed
		}
		if m.Error != "" {
			return fmt.Errorf("transport: remote %s: %s", method, m.Error)
		}
		if out != nil && len(m.Body) > 0 {
			if err := json.Unmarshal(m.Body, out); err != nil {
				return fmt.Errorf("transport: unmarshal response: %w", err)
			}
		}
		return nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("transport: %s timed out after %v", method, timeout)
	}
}

// Notify sends a one-way message; no response is awaited.
func (c *Client) Notify(method string, in any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("transport: marshal notification: %w", err)
	}
	m := &message{Kind: "notify", Method: method, Body: body}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(c.conn, m)
}

// Close tears the connection down and waits for the read loop.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
