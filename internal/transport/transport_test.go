package transport

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

const testTimeout = 5 * time.Second

type echoReq struct {
	Text string `json:"text"`
}

type echoResp struct {
	Text string `json:"text"`
	N    int    `json:"n"`
}

func newEchoServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.Handle("echo", func(body json.RawMessage) (any, error) {
		var req echoReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return echoResp{Text: req.Text, N: len(req.Text)}, nil
	})
	s.Handle("fail", func(json.RawMessage) (any, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := newEchoServer(t)
	c, err := Dial(s.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "hello"}, &resp, testTimeout); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hello" || resp.N != 5 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestCallRemoteError(t *testing.T) {
	s := newEchoServer(t)
	c, err := Dial(s.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("fail", echoReq{}, nil, testTimeout)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v, want remote failure", err)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	s := newEchoServer(t)
	c, err := Dial(s.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("nope", echoReq{}, nil, testTimeout)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v, want no-handler error", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := newEchoServer(t)
	c, err := Dial(s.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			text := strings.Repeat("x", i+1)
			var resp echoResp
			if err := c.Call("echo", echoReq{Text: text}, &resp, testTimeout); err != nil {
				errs <- err
				return
			}
			if resp.N != i+1 {
				errs <- fmt.Errorf("call %d: got N=%d", i, resp.N)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNotify(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := make(chan string, 1)
	s.Handle("event", func(body json.RawMessage) (any, error) {
		var req echoReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		got <- req.Text
		return nil, nil
	})
	c, err := Dial(s.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Notify("event", echoReq{Text: "ping"}); err != nil {
		t.Fatal(err)
	}
	select {
	case text := <-got:
		if text != "ping" {
			t.Fatalf("notification text = %q", text)
		}
	case <-time.After(testTimeout):
		t.Fatal("notification never arrived")
	}
}

func TestCallAfterServerClose(t *testing.T) {
	s := newEchoServer(t)
	c, err := Dial(s.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("echo", echoReq{Text: "a"}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Either ErrClosed or a write error is acceptable; it must not
	// hang.
	done := make(chan error, 1)
	go func() { done <- c.Call("echo", echoReq{Text: "b"}, nil, 2*time.Second) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call after server close should fail")
		}
	case <-time.After(testTimeout):
		t.Fatal("call after server close hung")
	}
}

func TestClientCloseIdempotent(t *testing.T) {
	s := newEchoServer(t)
	c, err := Dial(s.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", echoReq{}, nil, time.Second); err == nil {
		t.Fatal("call on closed client should fail")
	}
}

func TestLargePayload(t *testing.T) {
	s := newEchoServer(t)
	c, err := Dial(s.Addr(), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := strings.Repeat("g", 4<<20)
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: big}, &resp, testTimeout); err != nil {
		t.Fatal(err)
	}
	if resp.N != len(big) {
		t.Fatalf("N = %d, want %d", resp.N, len(big))
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	s := newEchoServer(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle should panic")
		}
	}()
	s.Handle("echo", func(json.RawMessage) (any, error) { return nil, nil })
}
