#!/usr/bin/env sh
# Benchstat-style delta report: render per-benchmark old-vs-new ns/op
# and allocs/op with percentage deltas from two `go test -json` bench
# runs. Purely informational — this script never fails the build; the
# regression gate is check_bench.sh. CI runs it with the committed
# pre-optimization baseline as "old" and the fresh run as "new" and
# uploads the table (BENCH_DELTA.txt), so every perf PR starts from a
# measured before/after instead of a guess.
# Usage: bench_delta.sh <old.json> <new.json>
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 <old.json> <new.json>" >&2
    exit 2
fi
old=$1
new=$2
[ -f "$old" ] || { echo "missing old bench file: $old" >&2; exit 2; }
[ -f "$new" ] || { echo "missing new bench file: $new" >&2; exit 2; }

tmp=${TMPDIR:-/tmp}/bench_delta.$$
trap 'rm -f "$tmp.old" "$tmp.new"' EXIT

# Same "<name> <ns/op> <allocs/op|->" extraction as check_bench.sh.
extract() {
    awk '
        !/"Action":"output"/ { next }
        {
            pkg = ""
            if (match($0, /"Package":"[^"]*"/)) {
                pkg = substr($0, RSTART + 11, RLENGTH - 12)
            }
            line = $0
            sub(/.*"Output":"/, "", line)
            if (line ~ /^Benchmark/) {
                name = line
                sub(/\\t.*/, "", name)
                gsub(/[[:space:]]+$/, "", name)
                sub(/-[0-9]+$/, "", name)
                pending[pkg] = name
            }
            if (line ~ /ns\/op/ && pending[pkg] != "") {
                if (match(line, /[0-9][0-9.]* ns\/op/)) {
                    ns = substr(line, RSTART, RLENGTH)
                    sub(/ ns\/op/, "", ns)
                    allocs = "-"
                    if (match(line, /[0-9][0-9.]* allocs\/op/)) {
                        allocs = substr(line, RSTART, RLENGTH)
                        sub(/ allocs\/op/, "", allocs)
                    }
                    print pending[pkg], ns, allocs
                    pending[pkg] = ""
                }
            }
        }
    ' "$1"
}

extract "$old" | sort >"$tmp.old"
extract "$new" | sort >"$tmp.new"

awk -v oldfile="$tmp.old" -v oldname="$old" -v newname="$new" '
    FILENAME == oldfile { ns[$1] = $2 + 0; allocs[$1] = $3; order[++n] = $1; next }
    { newns[$1] = $2 + 0; newallocs[$1] = $3; if (!($1 in ns)) order[++n] = $1 }
    END {
        printf "old: %s\nnew: %s\n\n", oldname, newname
        fmt = "%-45s %14s %14s %9s   %12s %12s %9s\n"
        printf fmt, "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta"
        for (i = 1; i <= n; i++) {
            b = order[i]
            if (b in printed) continue
            printed[b] = 1
            ons = (b in ns) ? sprintf("%d", ns[b]) : "-"
            nns = (b in newns) ? sprintf("%d", newns[b]) : "-"
            d = "-"
            if (b in ns && b in newns && ns[b] > 0)
                d = sprintf("%+.1f%%", (newns[b] - ns[b]) / ns[b] * 100)
            oa = (b in allocs) ? allocs[b] : "-"
            na = (b in newallocs) ? newallocs[b] : "-"
            da = "-"
            if (oa != "-" && na != "-" && oa + 0 > 0)
                da = sprintf("%+.1f%%", (na - oa) / oa * 100)
            printf fmt, b, ons, nns, d, oa, na, da
        }
    }
' "$tmp.old" "$tmp.new"
