#!/usr/bin/env sh
# Bench-regression guard: compare a fresh `go test -json` benchmark run
# against the committed reference, per benchmark, on ns/op AND
# allocs/op. A -benchtime=1x run is noisy and CI machines differ, so
# the ns/op gate is deliberately coarse: fail only when a benchmark
# comes in more than TOLERANCE times slower than its reference.
# Allocation counts are nearly deterministic for these workloads —
# machine speed does not change how often a campaign allocates — so
# their gate is tighter (ALLOC_TOLERANCE, default 1.5x): an allocs/op
# regression is a code change, not noise. Benchmarks present in only
# one of the two files are reported but never fail the gate.
# Usage: check_bench.sh <reference.json> <fresh.json>
set -eu

tolerance=${BENCH_TOLERANCE:-3.0}
alloc_tolerance=${BENCH_ALLOC_TOLERANCE:-1.5}

if [ $# -ne 2 ]; then
    echo "usage: $0 <reference.json> <fresh.json>" >&2
    exit 2
fi
ref=$1
fresh=$2
[ -f "$ref" ] || { echo "missing reference bench file: $ref" >&2; exit 2; }
[ -f "$fresh" ] || { echo "missing fresh bench file: $fresh" >&2; exit 2; }

tmp=${TMPDIR:-/tmp}/check_bench.$$
trap 'rm -f "$tmp.ref" "$tmp.fresh"' EXIT

# extract "<name> <ns/op> <allocs/op|->" triples from a `go test -json`
# stream. The test binary prints the benchmark name before running it,
# so the name and the result usually arrive as two separate "Output"
# events (sometimes one); pair the last pending name per package with
# the next ns/op line. The -<procs> name suffix is stripped so runs
# from machines with different GOMAXPROCS still line up. allocs/op is
# "-" for benchmarks that do not report allocations.
extract() {
    awk '
        !/"Action":"output"/ { next }
        {
            pkg = ""
            if (match($0, /"Package":"[^"]*"/)) {
                pkg = substr($0, RSTART + 11, RLENGTH - 12)
            }
            line = $0
            sub(/.*"Output":"/, "", line)
            if (line ~ /^Benchmark/) {
                name = line
                sub(/\\t.*/, "", name)
                gsub(/[[:space:]]+$/, "", name)
                sub(/-[0-9]+$/, "", name)
                pending[pkg] = name
            }
            if (line ~ /ns\/op/ && pending[pkg] != "") {
                if (match(line, /[0-9][0-9.]* ns\/op/)) {
                    ns = substr(line, RSTART, RLENGTH)
                    sub(/ ns\/op/, "", ns)
                    allocs = "-"
                    if (match(line, /[0-9][0-9.]* allocs\/op/)) {
                        allocs = substr(line, RSTART, RLENGTH)
                        sub(/ allocs\/op/, "", allocs)
                    }
                    print pending[pkg], ns, allocs
                    pending[pkg] = ""
                }
            }
        }
    ' "$1"
}

extract "$ref" | sort >"$tmp.ref"
extract "$fresh" | sort >"$tmp.fresh"

awk -v tol="$tolerance" -v atol="$alloc_tolerance" -v reffile="$tmp.ref" '
    FILENAME == reffile { ref[$1] = $2 + 0; refallocs[$1] = $3; next }
    {
        seen[$1] = 1
        if (!($1 in ref)) { printf "note: %s has no reference entry (new benchmark?)\n", $1; next }
        if (ref[$1] <= 0) next
        compared++
        ratio = ($2 + 0) / ref[$1]
        if (ratio > tol) {
            printf "REGRESSION %s: %s ns/op vs reference %s (%.2fx > %.2fx)\n", $1, $2, ref[$1], ratio, tol
            bad = 1
        }
        if ($3 != "-" && refallocs[$1] != "-" && refallocs[$1] + 0 > 0) {
            acompared++
            aratio = ($3 + 0) / (refallocs[$1] + 0)
            if (aratio > atol) {
                printf "ALLOC REGRESSION %s: %s allocs/op vs reference %s (%.2fx > %.2fx)\n", $1, $3, refallocs[$1], aratio, atol
                bad = 1
            }
        }
    }
    END {
        for (b in ref) if (!(b in seen))
            printf "note: %s missing from fresh run (renamed or dropped?)\n", b
        if (compared == 0) { print "no benchmarks compared: malformed input?"; exit 2 }
        if (bad) exit 1
        printf "%d benchmarks within %.2fx ns/op of the committed reference\n", compared, tol
        printf "%d benchmarks within %.2fx allocs/op of the committed reference\n", acompared, atol
    }
' "$tmp.ref" "$tmp.fresh"
