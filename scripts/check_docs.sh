#!/usr/bin/env sh
# Doc-rot guard: every internal/…, cmd/…, or examples/… path that
# DESIGN.md or README.md mentions must exist in the tree. This is what
# catches a doc pointing at a package that was renamed or never
# written (the failure mode the old "internal/core" pointer in
# internal/trace had).
set -eu
cd "$(dirname "$0")/.."
status=0
for doc in DESIGN.md README.md; do
    refs=$(grep -oE '(internal|cmd|examples)/[A-Za-z0-9._/-]+' "$doc" |
        sed 's/[.,;:]*$//' | sort -u)
    for ref in $refs; do
        if [ ! -e "$ref" ]; then
            echo "$doc references a missing path: $ref" >&2
            status=1
        fi
    done
done
if [ "$status" -eq 0 ]; then
    echo "docs reference only existing paths"
fi
exit $status
