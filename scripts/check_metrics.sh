#!/usr/bin/env sh
# Metrics-endpoint smoke check: start a live pland, burst a few
# /v1/measure queries at it (one repeated, so the cache sees both a
# miss and hits), then scrape GET /metrics and fail on any line that
# breaks the Prometheus text exposition grammar (0.0.4) or on a
# missing series. This is the wire-level twin of the in-process
# exposition tests in internal/obs and internal/planner.
# Usage: check_metrics.sh [addr]   (default 127.0.0.1:8663)
set -eu

addr=${1:-127.0.0.1:8663}
cd "$(dirname "$0")/.."

bin=${TMPDIR:-/tmp}/pland_check.$$
out=${TMPDIR:-/tmp}/pland_metrics.$$
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -f "$bin" "$out"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/pland
"$bin" -addr "$addr" -workers 2 -queue 8 &
pid=$!

# Wait for the daemon to come up.
i=0
until curl -sf "http://$addr/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && { echo "pland did not come up on $addr" >&2; exit 1; }
    sleep 0.2
done

# A small burst: one scenario measured, then repeated (cache hit), and
# a second distinct scenario — enough traffic to populate cache,
# queue, pool, and latency series.
q1='{"model":"ResNet-15","gpu":"K80","region":"us-central1","tier":"on-demand","workers":1,"target_steps":200,"seed":5}'
q2='{"model":"ResNet-15","gpu":"K80","region":"us-central1","tier":"on-demand","workers":2,"target_steps":200,"seed":5}'
curl -sf "http://$addr/v1/measure" -d "$q1" >/dev/null
curl -sf "http://$addr/v1/measure" -d "$q1" >/dev/null
curl -sf "http://$addr/v1/measure" -d "$q2" >/dev/null

curl -sf "http://$addr/metrics" >"$out"

# Every line must be a HELP/TYPE header or a well-formed sample.
bad=$(grep -cvE '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN))$' "$out" || true)
if [ "$bad" -ne 0 ]; then
    echo "malformed exposition lines:" >&2
    grep -vE '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN))$' "$out" >&2
    exit 1
fi

# The acceptance series: cache, queue, latency, pool utilization —
# populated, not merely present.
status=0
require() {
    if ! grep -qE "$1" "$out"; then
        echo "metrics output missing: $1" >&2
        status=1
    fi
}
require '^pland_cache_hits_total [1-9]'
require '^pland_cache_misses_total [1-9]'
require '^pland_cache_entries [1-9]'
require '^pland_pool_queue_depth [0-9]'
require '^pland_pool_jobs_total [1-9]'
require '^pland_pool_busy_seconds_total [0-9]'
require '^pland_sims_inflight [0-9]'
require 'pland_http_request_seconds_bucket\{endpoint="measure",le="\+Inf"\} [1-9]'
require 'pland_http_request_seconds_count\{endpoint="measure"\} [1-9]'
if [ "$status" -eq 0 ]; then
    echo "metrics endpoint well-formed with all acceptance series populated"
fi
exit $status
